package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/wire"
)

// loadgenConfig drives `copernicus loadgen`: an open-loop load generator
// for a live copernicus service, pacing a mixed scenario deck at a
// target request rate and reporting latency percentiles per scenario.
type loadgenConfig struct {
	target   string        // base URL of the server under test
	rps      float64       // target request rate (open-loop)
	duration time.Duration // how long to drive load
	conc     int           // max in-flight requests; at the cap, launches are dropped (counted)
	matrix   string        // matrix ID the warm scenarios hammer
	out      string        // JSON report path ("" = BENCH_loadgen.json)
	strict   bool          // non-zero exit on errors or zero completed requests
	wait     time.Duration // wait for the server to answer /v1/healthz first
	cluster  bool          // drive the cluster deck and record the run as "cluster"
}

// runName keys this run's entry in the report's runs list: re-running
// the same deck replaces its entry, so BENCH_loadgen.json holds one
// "default" run and one "cluster" run side by side.
func (c loadgenConfig) runName() string {
	if c.cluster {
		return "cluster"
	}
	return "default"
}

func (c loadgenConfig) withDefaults() loadgenConfig {
	if c.rps <= 0 {
		c.rps = 50
	}
	if c.duration <= 0 {
		c.duration = 10 * time.Second
	}
	if c.conc <= 0 {
		c.conc = 64
	}
	if c.matrix == "" {
		c.matrix = "DW"
	}
	if c.out == "" {
		c.out = "BENCH_loadgen.json"
	}
	if c.wait <= 0 {
		c.wait = 15 * time.Second
	}
	return c
}

// lgScenario is one entry of the mixed deck: how to build the request
// and how often it is drawn. Weights are relative; the deck is sampled
// deterministically (a weighted round-robin over a fixed schedule), so
// two runs at the same rate issue the same request sequence.
type lgScenario struct {
	name   string
	weight int
	build  func(seq uint64, base, matrix string) (*http.Request, error)
}

// coldSeq makes every cold request a distinct cache key by varying the
// kernel's iteration parameter — jacobi:N sweeps are real compute, and
// each N is its own sweep-cache entry (bounded by the service's
// iteration cap).
func coldSeq(seq uint64) string {
	return fmt.Sprintf("jacobi:%d", 2+seq%4000)
}

func loadgenDeck() []lgScenario {
	get := func(path string, accept string) func(uint64, string, string) (*http.Request, error) {
		return func(_ uint64, base, matrix string) (*http.Request, error) {
			req, err := http.NewRequest("GET", base+fmt.Sprintf(path, matrix), nil)
			if err == nil && accept != "" {
				req.Header.Set("Accept", accept)
			}
			return req, err
		}
	}
	sweep := func(accept string, cold bool) func(uint64, string, string) (*http.Request, error) {
		return func(seq uint64, base, matrix string) (*http.Request, error) {
			kernel := ""
			if cold {
				kernel = fmt.Sprintf(", %q: %q", "kernel", coldSeq(seq))
			}
			body := fmt.Sprintf(`{"matrix": %q, "formats": ["CSR", "ELL"], "partitions": [8, 16]%s}`, matrix, kernel)
			req, err := http.NewRequest("POST", base+"/v1/sweep", strings.NewReader(body))
			if err == nil && accept != "" {
				req.Header.Set("Accept", accept)
			}
			return req, err
		}
	}
	return []lgScenario{
		{"sweep_warm_json", 8, sweep("", false)},
		{"sweep_warm_col", 8, sweep(wire.ContentType, false)},
		{"characterize_warm_json", 4, get("/v1/characterize?matrix=%s&format=CSR&p=8", "")},
		{"characterize_warm_col", 4, get("/v1/characterize?matrix=%s&format=CSR&p=8", wire.ContentType)},
		{"advise_warm_json", 2, get("/v1/advise?matrix=%s&p=8", "")},
		{"advise_warm_col", 2, get("/v1/advise?matrix=%s&p=8", wire.ContentType)},
		{"sweep_cold_json", 1, sweep("", true)},
		{"sweep_cold_col", 1, sweep(wire.ContentType, true)},
	}
}

// lgRotation is the matrix set the cluster deck cycles through, so a
// coordinator's consistent-hash ring spreads groups over every worker
// instead of hammering one shard.
var lgRotation = []string{"DW", "FR", "RE", "AM"}

// clusterDeck is the -cluster scenario mix: sweep-heavy with rotating
// matrices, the shape that shows fleet scaling — warm sweeps measure
// fan-out + merge overhead against the single-node run's same
// scenarios, cold sweeps keep every worker computing.
func clusterDeck() []lgScenario {
	rotate := func(build func(uint64, string, string) (*http.Request, error)) func(uint64, string, string) (*http.Request, error) {
		return func(seq uint64, base, _ string) (*http.Request, error) {
			return build(seq, base, lgRotation[seq%uint64(len(lgRotation))])
		}
	}
	var warmJSON, warmCol, coldCol, adviseCol func(uint64, string, string) (*http.Request, error)
	for _, sc := range loadgenDeck() {
		switch sc.name {
		case "sweep_warm_json":
			warmJSON = sc.build
		case "sweep_warm_col":
			warmCol = sc.build
		case "sweep_cold_col":
			coldCol = sc.build
		case "advise_warm_col":
			adviseCol = sc.build
		}
	}
	return []lgScenario{
		{"sweep_warm_col", 8, rotate(warmCol)},
		{"sweep_warm_json", 4, rotate(warmJSON)},
		{"sweep_cold_col", 2, rotate(coldCol)},
		{"advise_warm_col", 2, rotate(adviseCol)},
	}
}

// lgTally accumulates one scenario's outcomes; latencies are kept whole
// for exact percentile extraction afterwards.
type lgTally struct {
	mu        sync.Mutex
	latencies []time.Duration
	bytes     int64
	errors    int64
}

func (t *lgTally) record(lat time.Duration, n int64, ok bool) {
	t.mu.Lock()
	if ok {
		t.latencies = append(t.latencies, lat)
		t.bytes += n
	} else {
		t.errors++
	}
	t.mu.Unlock()
}

// lgScenarioReport is one scenario's line in BENCH_loadgen.json.
type lgScenarioReport struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	Errors      int64   `json:"errors"`
	BytesPerReq float64 `json:"bytes_per_request"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// lgReport is one run's record in BENCH_loadgen.json.
type lgReport struct {
	Name        string             `json:"name"`
	Target      string             `json:"target"`
	TargetRPS   float64            `json:"target_rps"`
	DurationS   float64            `json:"duration_s"`
	AchievedRPS float64            `json:"achieved_rps"`
	Completed   int                `json:"completed"`
	Errors      int64              `json:"errors"`
	Dropped     int64              `json:"dropped"`
	Scenarios   []lgScenarioReport `json:"scenarios"`
}

// lgFile is the whole BENCH_loadgen.json: one entry per named run, so
// the single-node "default" run and the fleet "cluster" run sit side
// by side for scaling comparison. loadgenCmd replaces the same-named
// run and preserves the others.
type lgFile struct {
	Runs []lgReport `json:"runs"`
}

func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// lgWaitReady polls /v1/healthz until the server answers 200 — loadgen
// is usually started right after `serve`, before the suites finish
// registering.
func lgWaitReady(ctx context.Context, client *http.Client, base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s (last: %v)", base, wait, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// runLoadgen drives the deck against a live server and returns the
// report. Pacing is open-loop: launch times follow the target rate
// regardless of response latency, so a slow server shows up as rising
// percentiles (and, at the concurrency cap, dropped launches) instead
// of a silently reduced rate.
func runLoadgen(ctx context.Context, c loadgenConfig) (*lgReport, error) {
	c = c.withDefaults()
	client := &http.Client{Timeout: 30 * time.Second}
	if err := lgWaitReady(ctx, client, c.target, c.wait); err != nil {
		return nil, err
	}

	deck := loadgenDeck()
	if c.cluster {
		deck = clusterDeck()
	}
	// Fixed weighted schedule: scenario i appears weight[i] times per
	// cycle, interleaved by repeating the deck expansion.
	var schedule []int
	for i, sc := range deck {
		for k := 0; k < sc.weight; k++ {
			schedule = append(schedule, i)
		}
	}

	tallies := make([]lgTally, len(deck))
	var wg sync.WaitGroup
	var dropped int64
	sem := make(chan struct{}, c.conc)
	interval := time.Duration(float64(time.Second) / c.rps)
	start := time.Now()
	end := start.Add(c.duration)

	var seq uint64
	for next := start; next.Before(end) && ctx.Err() == nil; next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		i := schedule[seq%uint64(len(schedule))]
		n := seq
		seq++ // only the pacing loop touches seq
		select {
		case sem <- struct{}{}:
		default:
			atomic.AddInt64(&dropped, 1) // at the in-flight cap: open-loop drops, not queues
			continue
		}
		wg.Add(1)
		go func(i int, n uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			req, err := deck[i].build(n, c.target, c.matrix)
			if err != nil {
				tallies[i].record(0, 0, false)
				return
			}
			req = req.WithContext(ctx)
			t0 := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				tallies[i].record(0, 0, false)
				return
			}
			nBytes, _ := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok := resp.StatusCode >= 200 && resp.StatusCode < 300
			tallies[i].record(time.Since(t0), nBytes, ok)
		}(i, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &lgReport{
		Name:      c.runName(),
		Target:    c.target,
		TargetRPS: c.rps,
		DurationS: elapsed.Seconds(),
		Dropped:   atomic.LoadInt64(&dropped),
	}
	for i, sc := range deck {
		t := &tallies[i]
		sort.Slice(t.latencies, func(a, b int) bool { return t.latencies[a] < t.latencies[b] })
		var bpr float64
		if len(t.latencies) > 0 {
			bpr = float64(t.bytes) / float64(len(t.latencies))
		}
		rep.Scenarios = append(rep.Scenarios, lgScenarioReport{
			Name:        sc.name,
			Requests:    len(t.latencies),
			Errors:      t.errors,
			BytesPerReq: bpr,
			P50Ms:       percentileMs(t.latencies, 0.50),
			P95Ms:       percentileMs(t.latencies, 0.95),
			P99Ms:       percentileMs(t.latencies, 0.99),
		})
		rep.Completed += len(t.latencies)
		rep.Errors += t.errors
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Completed) / elapsed.Seconds()
	}
	return rep, nil
}

// loadgenCmd is the `copernicus loadgen` entry point: run the deck,
// print the per-scenario table, write the JSON report, and (with
// -strict) fail the process on errors or an idle run.
func loadgenCmd(ctx context.Context, c loadgenConfig) error {
	rep, err := runLoadgen(ctx, c)
	if err != nil {
		return err
	}
	c = c.withDefaults()

	fmt.Printf("loadgen %s: %.1f rps target, %.1f achieved, %d completed, %d errors, %d dropped over %.1fs\n",
		rep.Target, rep.TargetRPS, rep.AchievedRPS, rep.Completed, rep.Errors, rep.Dropped, rep.DurationS)
	fmt.Printf("%-24s %8s %7s %12s %9s %9s %9s\n",
		"scenario", "reqs", "errs", "bytes/req", "p50 ms", "p95 ms", "p99 ms")
	for _, sc := range rep.Scenarios {
		fmt.Printf("%-24s %8d %7d %12.0f %9.2f %9.2f %9.2f\n",
			sc.Name, sc.Requests, sc.Errors, sc.BytesPerReq, sc.P50Ms, sc.P95Ms, sc.P99Ms)
	}

	// Merge into the runs file: replace this run's previous entry (by
	// name), keep the rest — a fresh cluster run never clobbers the
	// single-node baseline it is compared against.
	var file lgFile
	if prev, err := os.ReadFile(c.out); err == nil {
		if err := json.Unmarshal(prev, &file); err != nil {
			file = lgFile{} // pre-runs-schema or corrupt: start over
		}
	}
	replaced := false
	for i := range file.Runs {
		if file.Runs[i].Name == rep.Name {
			file.Runs[i] = *rep
			replaced = true
			break
		}
	}
	if !replaced {
		file.Runs = append(file.Runs, *rep)
	}
	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (run %q)\n", c.out, rep.Name)

	if c.strict {
		switch {
		case rep.Completed == 0:
			return fmt.Errorf("strict: no requests completed")
		case rep.Errors > 0:
			return fmt.Errorf("strict: %d requests failed", rep.Errors)
		}
	}
	return nil
}
