package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copernicus"
	"copernicus/internal/service"
)

// serveConfig collects the serve subcommand's tunables: the service
// sizing knobs plus the http.Server hardening limits. Zero values take
// the documented defaults via withDefaults.
type serveConfig struct {
	addr         string
	scale        int
	workers      int
	cacheEntries int

	// readTimeout bounds reading an entire request (headers + body);
	// it is the defense against slow-write clients holding connections
	// through a large matrix upload (default 30s).
	readTimeout time.Duration
	// writeTimeout bounds writing a response. The default is 0 —
	// deliberately unlimited — because the NDJSON sweep stream and the
	// job SSE stream are long-lived responses whose duration is set by
	// compute and client pacing, not a fixed budget; cutting them at a
	// wall-clock limit would break exactly the streaming paths the
	// service exists for. Slow synchronous compute is bounded instead
	// by the service's per-request deadline cap (requestTimeout).
	writeTimeout time.Duration
	// idleTimeout bounds how long a kept-alive connection may sit idle
	// between requests (default 120s).
	idleTimeout time.Duration
	// maxHeaderBytes bounds request header size (default 1 MiB).
	maxHeaderBytes int
	// requestTimeout is passed through to the service's per-request
	// compute deadline cap: 0 keeps the service default (60s),
	// negative disables the cap. SSE job streams are never capped.
	requestTimeout time.Duration
}

func (c serveConfig) withDefaults() serveConfig {
	if c.readTimeout == 0 {
		c.readTimeout = 30 * time.Second
	}
	if c.idleTimeout == 0 {
		c.idleTimeout = 120 * time.Second
	}
	if c.maxHeaderBytes == 0 {
		c.maxHeaderBytes = 1 << 20
	}
	return c
}

// buildServe constructs the service and the hardened http.Server
// without listening — the testable core of serve. Negative timeout
// values disable the corresponding limit (net/http treats <= 0 as no
// limit; the service interprets a negative requestTimeout the same
// way).
func buildServe(c serveConfig) (*service.Server, *http.Server) {
	c = c.withDefaults()
	e := copernicus.NewEngine()
	if c.workers > 0 {
		e.SetWorkers(c.workers)
	}
	svc := service.New(service.Options{
		Engine:         e,
		Scale:          c.scale,
		CacheEntries:   c.cacheEntries,
		RequestTimeout: c.requestTimeout,
	})
	hs := &http.Server{
		Addr:              c.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       c.readTimeout,
		WriteTimeout:      c.writeTimeout,
		IdleTimeout:       c.idleTimeout,
		MaxHeaderBytes:    c.maxHeaderBytes,
	}
	return svc, hs
}

// serve runs the long-running characterization service: the HTTP/JSON
// API over a single warm engine, so concurrent clients share cached
// plans and sweep results. It shuts down gracefully on SIGINT/SIGTERM:
// the service's base context is canceled first — aborting in-flight
// sweeps mid-warmup and canceling queued and running jobs, instead of
// waiting for them to run to completion — and the HTTP listener then
// drains the (now fast-unwinding) connections for up to ten seconds.
func serve(c serveConfig) error {
	svc, hs := buildServe(c)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("copernicus service on %s: %d built-in matrices (scale %d), %d workers\n",
		c.addr, svc.Registry().Len(), c.scale, svc.Engine().Workers())

	select {
	case err := <-errCh:
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintln(os.Stderr, "copernicus: canceling in-flight sweeps and jobs, draining connections")
	// Cancel compute before draining: handlers blocked in engine warmup
	// or measurement return promptly with a context error, and the job
	// manager cancels queued and running jobs, so Shutdown below drains
	// connections instead of waiting out multi-second sweeps.
	svc.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
