package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copernicus"
	"copernicus/internal/service"
)

// serve runs the long-running characterization service: the HTTP/JSON
// API over a single warm engine, so concurrent clients share cached
// plans and sweep results. It shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests for up to ten seconds.
func serve(addr string, scale, workers, cacheEntries int) error {
	e := copernicus.NewEngine()
	if workers > 0 {
		e.SetWorkers(workers)
	}
	svc := service.New(service.Options{Engine: e, Scale: scale, CacheEntries: cacheEntries})
	hs := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("copernicus service on %s: %d built-in matrices (scale %d), %d workers\n",
		addr, svc.Registry().Len(), scale, e.Workers())

	select {
	case err := <-errCh:
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintln(os.Stderr, "copernicus: draining connections")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
