package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copernicus"
	"copernicus/internal/service"
)

// serve runs the long-running characterization service: the HTTP/JSON
// API over a single warm engine, so concurrent clients share cached
// plans and sweep results. It shuts down gracefully on SIGINT/SIGTERM:
// the service's base context is canceled first — aborting in-flight
// sweeps mid-warmup and canceling queued and running jobs, instead of
// waiting for them to run to completion — and the HTTP listener then
// drains the (now fast-unwinding) connections for up to ten seconds.
func serve(addr string, scale, workers, cacheEntries int) error {
	e := copernicus.NewEngine()
	if workers > 0 {
		e.SetWorkers(workers)
	}
	svc := service.New(service.Options{Engine: e, Scale: scale, CacheEntries: cacheEntries})
	hs := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("copernicus service on %s: %d built-in matrices (scale %d), %d workers\n",
		addr, svc.Registry().Len(), scale, e.Workers())

	select {
	case err := <-errCh:
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintln(os.Stderr, "copernicus: canceling in-flight sweeps and jobs, draining connections")
	// Cancel compute before draining: handlers blocked in engine warmup
	// or measurement return promptly with a context error, and the job
	// manager cancels queued and running jobs, so Shutdown below drains
	// connections instead of waiting out multi-second sweeps.
	svc.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
