package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"copernicus"
	"copernicus/internal/cluster"
	"copernicus/internal/service"
)

// serveConfig collects the serve subcommand's tunables: the service
// sizing knobs plus the http.Server hardening limits. Zero values take
// the documented defaults via withDefaults.
type serveConfig struct {
	addr         string
	scale        int
	cacheEntries int

	// workersFlag is the raw -workers value. Standalone it is the sweep
	// worker-pool size ("4"); with -coordinator it is the fleet — a
	// comma-separated host:port list dispatch shards over.
	workersFlag string
	// coordinator turns the server into a cluster coordinator: sweeps
	// fan out over the fleet's HTTP API and merge back byte-identical
	// to a single-node run.
	coordinator bool
	// workersFile names a static fleet config (one host:port per line,
	// #-comments and blanks ignored), appended to workersFlag's list.
	workersFile string

	// readTimeout bounds reading an entire request (headers + body);
	// it is the defense against slow-write clients holding connections
	// through a large matrix upload (default 30s).
	readTimeout time.Duration
	// writeTimeout bounds writing a response. The default is 0 —
	// deliberately unlimited — because the NDJSON sweep stream and the
	// job SSE stream are long-lived responses whose duration is set by
	// compute and client pacing, not a fixed budget; cutting them at a
	// wall-clock limit would break exactly the streaming paths the
	// service exists for. Slow synchronous compute is bounded instead
	// by the service's per-request deadline cap (requestTimeout).
	writeTimeout time.Duration
	// idleTimeout bounds how long a kept-alive connection may sit idle
	// between requests (default 120s).
	idleTimeout time.Duration
	// maxHeaderBytes bounds request header size (default 1 MiB).
	maxHeaderBytes int
	// requestTimeout is passed through to the service's per-request
	// compute deadline cap: 0 keeps the service default (60s),
	// negative disables the cap. SSE job streams are never capped.
	requestTimeout time.Duration
}

func (c serveConfig) withDefaults() serveConfig {
	if c.readTimeout == 0 {
		c.readTimeout = 30 * time.Second
	}
	if c.idleTimeout == 0 {
		c.idleTimeout = 120 * time.Second
	}
	if c.maxHeaderBytes == 0 {
		c.maxHeaderBytes = 1 << 20
	}
	return c
}

// buildServe constructs the service and the hardened http.Server
// without listening — the testable core of serve. Negative timeout
// values disable the corresponding limit (net/http treats <= 0 as no
// limit; the service interprets a negative requestTimeout the same
// way).
func buildServe(c serveConfig) (*service.Server, *http.Server, error) {
	c = c.withDefaults()
	e := copernicus.NewEngine()
	var co *cluster.Coordinator
	if c.coordinator {
		fleet, err := resolveFleet(c.workersFlag, c.workersFile)
		if err != nil {
			return nil, nil, err
		}
		co, err = cluster.New(cluster.Config{Workers: fleet})
		if err != nil {
			return nil, nil, fmt.Errorf("coordinator: %w", err)
		}
	} else {
		if c.workersFile != "" {
			return nil, nil, fmt.Errorf("-workers-file requires -coordinator")
		}
		if c.workersFlag != "" {
			pool, err := strconv.Atoi(c.workersFlag)
			if err != nil || pool < 1 {
				return nil, nil, fmt.Errorf("-workers %q: want a worker-pool size (the host:port fleet form requires -coordinator)", c.workersFlag)
			}
			e.SetWorkers(pool)
		}
	}
	svc := service.New(service.Options{
		Engine:         e,
		Scale:          c.scale,
		CacheEntries:   c.cacheEntries,
		RequestTimeout: c.requestTimeout,
		Cluster:        co,
	})
	hs := &http.Server{
		Addr:              c.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       c.readTimeout,
		WriteTimeout:      c.writeTimeout,
		IdleTimeout:       c.idleTimeout,
		MaxHeaderBytes:    c.maxHeaderBytes,
	}
	return svc, hs, nil
}

// resolveFleet merges the -workers host:port list with the
// -workers-file static config into the coordinator's fleet.
func resolveFleet(csv, file string) ([]string, error) {
	var fleet []string
	for _, w := range strings.Split(csv, ",") {
		if w = strings.TrimSpace(w); w != "" {
			fleet = append(fleet, w)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("-workers-file: %w", err)
		}
		fleet = append(fleet, cluster.ParseWorkersFile(data)...)
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("-coordinator needs a fleet: -workers host1:port,host2:port or -workers-file")
	}
	return fleet, nil
}

// serve runs the long-running characterization service: the HTTP/JSON
// API over a single warm engine, so concurrent clients share cached
// plans and sweep results. It shuts down gracefully on SIGINT/SIGTERM:
// the service's base context is canceled first — aborting in-flight
// sweeps mid-warmup and canceling queued and running jobs, instead of
// waiting for them to run to completion — and the HTTP listener then
// drains the (now fast-unwinding) connections for up to ten seconds.
func serve(c serveConfig) error {
	svc, hs, err := buildServe(c)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	mode := fmt.Sprintf("%d workers", svc.Engine().Workers())
	if c.coordinator {
		fleet, _ := resolveFleet(c.workersFlag, c.workersFile)
		mode = fmt.Sprintf("coordinator over %d-worker fleet", len(fleet))
	}
	fmt.Printf("copernicus service on %s: %d built-in matrices (scale %d), %s\n",
		c.addr, svc.Registry().Len(), c.scale, mode)

	select {
	case err := <-errCh:
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintln(os.Stderr, "copernicus: canceling in-flight sweeps and jobs, draining connections")
	// Cancel compute before draining: handlers blocked in engine warmup
	// or measurement return promptly with a context error, and the job
	// manager cancels queued and running jobs, so Shutdown below drains
	// connections instead of waiting out multi-second sweeps.
	svc.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
