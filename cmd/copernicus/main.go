// Command copernicus regenerates the paper's evaluation artifacts and
// runs ad-hoc characterizations from the command line.
//
// Usage:
//
//	copernicus list                      # available experiments
//	copernicus all [flags]               # regenerate every figure/table
//	copernicus fig4 [flags]              # regenerate one artifact
//	copernicus sweep [flags]             # characterize one matrix: formats x partitions x backend
//	copernicus advise [flags]            # recommend a format for a matrix
//	copernicus workloads [flags]         # describe the workload suites
//	copernicus bench -json [flags]       # time the engine hot paths, emit BENCH_sweep.json
//	copernicus serve [flags]             # long-running characterization service (HTTP/JSON)
//	copernicus loadgen [flags]           # drive a live server with a mixed scenario deck, emit BENCH_loadgen.json
//
// Flags:
//
//	-scale N    workload dimension cap (default 1024; 256 ≈ seconds)
//	-csv        emit CSV instead of aligned tables
//	-p N        partition size for advise (default 16)
//	-backend B  costing backend for sweep/advise/bench: analytic|native
//	-threads T  native SpMV fan-out (native backend only, 1..GOMAXPROCS)
//	-kernel K   kernel spec for sweep/advise: spmv|spmm:K|cg:N|jacobi:N|pagerank:N|bfs
//	-kind K     matrix kind for advise: random|band|graph|stencil|circuit|ml
//	-n N        matrix dimension for advise (default 512)
//	-density D  density for random/ml matrices (default 0.05)
//	-width W    band width (default 8)
//	-seed S     generator seed (default 1)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"copernicus"
	"copernicus/internal/service"
	"copernicus/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "copernicus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	scale := fs.Int("scale", 1024, "workload dimension cap")
	csv := fs.Bool("csv", false, "emit CSV")
	p := fs.Int("p", 16, "partition size")
	kind := fs.String("kind", "random", "matrix kind for advise/convert/stats/scaling")
	n := fs.Int("n", 512, "matrix dimension")
	density := fs.Float64("density", 0.05, "density for random/ml matrices")
	width := fs.Int("width", 8, "band width")
	seed := fs.Uint64("seed", 1, "generator seed")
	mtxPath := fs.String("mtx", "", "Matrix Market file to load instead of generating")
	out := fs.String("out", "", "output path (convert; bench JSON, default BENCH_sweep.json)")
	outDir := fs.String("outdir", "", "write each artifact as <id>.txt and <id>.csv into this directory")
	lanes := fs.Int("lanes", 8, "maximum pipeline instances (scaling)")
	format := fs.String("format", "COO", "format name (scaling/trace)")
	tiles := fs.Int("tiles", 12, "maximum tiles to render (trace)")
	jsonOut := fs.Bool("json", false, "write bench results as JSON (bench)")
	iters := fs.Int("iters", 5, "timed iterations per benchmark (bench)")
	backendID := fs.String("backend", "analytic", "costing backend for sweep/advise/bench: "+strings.Join(copernicus.BackendIDs(), "|"))
	threads := fs.Int("threads", 0, "native SpMV fan-out for sweep/advise/bench: goroutines per multiplication (native backend only, 1..GOMAXPROCS)")
	kernel := fs.String("kernel", "", "kernel spec for sweep/advise: spmv|spmm:K|cg:N|jacobi:N|pagerank:N|bfs (default spmv)")
	formatsList := fs.String("formats", "", "comma-separated formats (sweep; default core set)")
	psList := fs.String("ps", "8,16,32", "comma-separated partition sizes (sweep)")
	addr := fs.String("addr", "localhost:8459", "listen address (serve)")
	workersFlag := fs.String("workers", "", "serve: sweep worker-pool size, empty = GOMAXPROCS; with -coordinator, the comma-separated worker host:port fleet")
	coordinator := fs.Bool("coordinator", false, "serve: run as a cluster coordinator fanning sweeps out over the -workers fleet")
	workersFile := fs.String("workers-file", "", "serve -coordinator: static fleet config, one worker host:port per line (#-comments and blanks ignored)")
	cacheEntries := fs.Int("cache", 256, "sweep result cache entries (serve)")
	readTimeout := fs.Duration("read-timeout", 0, "serve: max time to read a request, 0 = 30s default, negative = unlimited")
	writeTimeout := fs.Duration("write-timeout", 0, "serve: max time to write a response, 0 = unlimited (NDJSON/SSE streams must not be cut)")
	idleTimeout := fs.Duration("idle-timeout", 0, "serve: keep-alive idle limit, 0 = 120s default, negative = unlimited")
	maxHeaderBytes := fs.Int("max-header-bytes", 0, "serve: request header size limit, 0 = 1 MiB default")
	requestTimeout := fs.Duration("request-timeout", 0, "serve: per-request compute deadline cap, 0 = 60s default, negative = disabled")
	timeout := fs.Duration("timeout", 0, "abort sweep/advise/bench/loadgen after this long (0 = no limit)")
	target := fs.String("target", "http://localhost:8459", "server base URL (loadgen)")
	rps := fs.Float64("rps", 50, "target request rate (loadgen)")
	lgDuration := fs.Duration("duration", 10*time.Second, "how long to drive load (loadgen)")
	lgConc := fs.Int("conc", 64, "max in-flight requests (loadgen)")
	lgMatrix := fs.String("matrix", "DW", "matrix ID the warm scenarios hit (loadgen)")
	lgStrict := fs.Bool("strict", false, "exit non-zero on any failed request or an idle run (loadgen)")
	lgWait := fs.Duration("wait-ready", 15*time.Second, "how long to wait for the server to answer healthz (loadgen)")
	lgCluster := fs.Bool("cluster", false, "loadgen: drive the sweep-heavy rotating-matrix cluster deck, recorded as the \"cluster\" run")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	// Compute subcommands run under a cancelable context: Ctrl-C (or
	// SIGTERM, or -timeout) aborts the engine mid-warmup instead of
	// letting it run to completion. On cancellation they exit non-zero
	// with a note that any output already printed is partial.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	notePartial := func(err error) error {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "copernicus: canceled — any output above is partial")
		}
		return err
	}

	load := func() (*copernicus.Matrix, error) {
		if *mtxPath != "" {
			return copernicus.LoadMatrixMarket(*mtxPath)
		}
		return buildMatrix(*kind, *n, *density, *width, *seed)
	}

	switch cmd {
	case "list":
		fmt.Println("experiments:", strings.Join(copernicus.Experiments(), " "))
		fmt.Println("extensions: ", strings.Join(copernicus.ExtExperiments(), " "))
		return nil
	case "ext":
		return runExperiments(copernicus.ExtExperiments(), *scale, *csv, *outDir)
	case "all":
		return runExperiments(copernicus.Experiments(), *scale, *csv, *outDir)
	case "sweep":
		m, err := load()
		if err != nil {
			return err
		}
		return notePartial(sweepCmd(ctx, m, *kind, *backendID, *threads, *kernel, *formatsList, *psList, *csv))
	case "advise":
		m, err := load()
		if err != nil {
			return err
		}
		return notePartial(advise(ctx, m, *kind, *p, *backendID, *threads, *kernel))
	case "stats":
		m, err := load()
		if err != nil {
			return err
		}
		return stats(m)
	case "convert":
		m, err := load()
		if err != nil {
			return err
		}
		if *out == "" {
			return copernicus.WriteMatrixMarket(os.Stdout, m)
		}
		return copernicus.SaveMatrixMarket(*out, m)
	case "scaling":
		m, err := load()
		if err != nil {
			return err
		}
		return scaling(m, *format, *p, *lanes)
	case "trace":
		m, err := load()
		if err != nil {
			return err
		}
		return trace(m, *format, *p, *tiles)
	case "bench":
		return notePartial(benchCmd(ctx, *scale, *iters, *jsonOut, *out, *backendID, *threads))
	case "loadgen":
		lgOut := *out
		if lgOut == "" {
			lgOut = "BENCH_loadgen.json"
		}
		return notePartial(loadgenCmd(ctx, loadgenConfig{
			target:   *target,
			rps:      *rps,
			duration: *lgDuration,
			conc:     *lgConc,
			matrix:   *lgMatrix,
			out:      lgOut,
			strict:   *lgStrict,
			wait:     *lgWait,
			cluster:  *lgCluster,
		}))
	case "serve":
		return serve(serveConfig{
			addr:           *addr,
			scale:          *scale,
			workersFlag:    *workersFlag,
			coordinator:    *coordinator,
			workersFile:    *workersFile,
			cacheEntries:   *cacheEntries,
			readTimeout:    *readTimeout,
			writeTimeout:   *writeTimeout,
			idleTimeout:    *idleTimeout,
			maxHeaderBytes: *maxHeaderBytes,
			requestTimeout: *requestTimeout,
		})
	case "workloads":
		return describeWorkloads(*scale)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		for _, id := range append(copernicus.Experiments(), copernicus.ExtExperiments()...) {
			if cmd == id {
				return runExperiments([]string{id}, *scale, *csv, *outDir)
			}
		}
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: copernicus <list|all|sweep|advise|stats|convert|scaling|bench|serve|loadgen|workloads|fig3..fig14|table2> [flags]`)
}

// benchResult is one timed benchmark in the BENCH_sweep.json record.
// AllocsPerOp/BytesPerOp track the allocation trajectory of each hot
// path alongside its latency (heap deltas via runtime.ReadMemStats).
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Points      int     `json:"points,omitempty"`
	// PayloadBytes is set on serving-path entries: the response (or
	// encoded slab) size in bytes, so the JSON-vs-columnar size ratio is
	// part of the per-commit record.
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// Speedup is set on derived ratio entries (parallel_speedup_csr):
	// the single-thread ns_per_op over the full-width ns_per_op.
	Speedup float64 `json:"speedup,omitempty"`
}

// measure times fn over iters iterations, recording wall time and heap
// allocation deltas per op.
func measure(name string, iters, points int, fn func() error) (benchResult, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return benchResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		Points:      points,
	}, nil
}

// benchRecord is the perf-trajectory artifact emitted by `bench -json`.
// Backend, GoVersion and GOMAXPROCS pin the measurement environment so
// the trajectory stays comparable across machines, toolchains and
// costing backends.
type benchRecord struct {
	Scale      int           `json:"scale"`
	Workers    int           `json:"workers"`
	Backend    string        `json:"backend"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchCmd times the two engine hot paths the streaming-plan layer
// accelerates — a full characterization sweep and an iterative CG solve
// through the accelerator backend — and optionally records them to
// BENCH_sweep.json so the performance trajectory is tracked per commit.
func benchCmd(ctx context.Context, scale, iters int, jsonOut bool, out, backendID string, threads int) error {
	if iters < 1 {
		iters = 1
	}
	if scale < 16 {
		return fmt.Errorf("bench: -scale must be >= 16 (got %d)", scale)
	}
	bk, err := cliBackend(backendID, threads)
	if err != nil {
		return err
	}
	// Sweep benchmark: SuiteSparse suite × core formats × all partition
	// sizes on a long-lived engine (plan reuse reflects steady state),
	// costed by the selected backend.
	e := copernicus.NewEngine()
	// Non-parallelizable backends force the sweep serial; the record pins
	// the concurrency the sweep actually ran with, not the pool setting.
	workers := e.Workers()
	if !bk.Parallelizable() {
		workers = 1
	}
	rec := benchRecord{
		Scale:      scale,
		Backend:    bk.ID(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Workers:    workers,
	}
	ws := copernicus.SuiteSparseWorkloads(copernicus.WorkloadConfig{Scale: scale, RandomDim: scale, BandDim: scale})
	points := len(ws) * len(copernicus.CoreFormats()) * len(copernicus.PartitionSizes())
	slab, err := e.SweepWith(ctx, bk, ws, copernicus.CoreFormats(), copernicus.PartitionSizes())
	if err != nil {
		return err
	}
	res, err := measure("sweep_suitesparse_core_formats", iters, points, func() error {
		_, err := e.SweepWith(ctx, bk, ws, copernicus.CoreFormats(), copernicus.PartitionSizes())
		return err
	})
	if err != nil {
		return err
	}
	rec.Benchmarks = append(rec.Benchmarks, res)

	// Streamed-sweep latency: the same warm sweep through SweepStreamWith,
	// recording both how quickly the first result row reaches the caller
	// (the latency a streaming client or NDJSON consumer sees) and the
	// total stream time. On a warm engine the gap between the two is the
	// whole point of incremental delivery: first-row latency stays at one
	// group's cost no matter how many groups the sweep spans.
	var firstNs, totalNs float64
	for i := 0; i < iters; i++ {
		gotFirst := false
		start := time.Now()
		err := e.SweepStreamWith(ctx, bk, ws, copernicus.CoreFormats(), copernicus.PartitionSizes(),
			func(copernicus.Result) error {
				if !gotFirst {
					gotFirst = true
					firstNs += float64(time.Since(start).Nanoseconds())
				}
				return nil
			})
		if err != nil {
			return err
		}
		totalNs += float64(time.Since(start).Nanoseconds())
	}
	rec.Benchmarks = append(rec.Benchmarks,
		benchResult{Name: "sweep_stream_time_to_first_result", Iterations: iters, NsPerOp: firstNs / float64(iters), Points: points},
		benchResult{Name: "sweep_stream_total", Iterations: iters, NsPerOp: totalNs / float64(iters), Points: points})

	// Serving-encode benchmarks: rendering the suite slab as the full
	// JSON response envelope versus the columnar wire body. The payload
	// sizes land in the record, so the JSON/columnar ratio (the wire
	// format's reason to exist) is tracked per commit alongside the
	// encode cost the warm cache eliminates.
	benchInfo := service.MatrixInfo{ID: "bench", Name: "suite-slab", Source: "builtin", Kind: "suite"}
	var jsonSlab, colSlab []byte
	res, err = measure("encode_json_slab", iters, len(slab), func() error {
		jsonSlab = service.SweepBodyJSON(benchInfo, true, slab)
		return nil
	})
	if err != nil {
		return err
	}
	res.PayloadBytes = len(jsonSlab)
	rec.Benchmarks = append(rec.Benchmarks, res)
	res, err = measure("encode_col_slab", iters, len(slab), func() error {
		colSlab = wire.Encode(slab)
		return nil
	})
	if err != nil {
		return err
	}
	res.PayloadBytes = len(colSlab)
	rec.Benchmarks = append(rec.Benchmarks, res)

	// Warm-hit benchmarks: a cached sweep served through the live
	// handler per content type — the whole request path with zero
	// marshal work. The response writer is a sink so the measurement is
	// the serving path, not a recorder's buffer management.
	svc := service.New(service.Options{Scale: 64})
	handler := svc.Handler()
	warmBody := `{"matrix": "DW", "partitions": [8, 16, 32]}`
	warmHit := func(accept string) (int64, error) {
		req, err := http.NewRequest("POST", "/v1/sweep", strings.NewReader(warmBody))
		if err != nil {
			return 0, err
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		sink := &sinkResponseWriter{h: make(http.Header)}
		handler.ServeHTTP(sink, req)
		if sink.status != 0 && sink.status != http.StatusOK {
			return 0, fmt.Errorf("warm hit answered %d", sink.status)
		}
		return sink.n, nil
	}
	for _, hit := range []struct {
		name   string
		accept string
	}{
		{"serve_warm_hit_json", ""},
		{"serve_warm_hit_col", wire.ContentType},
	} {
		var n int64
		// Two priming requests: the cold compute, then the warm encode
		// that attaches the body to the cache entry.
		for i := 0; i < 2; i++ {
			if n, err = warmHit(hit.accept); err != nil {
				return err
			}
		}
		res, err = measure(hit.name, iters*100, 0, func() error {
			_, err := warmHit(hit.accept)
			return err
		})
		if err != nil {
			return err
		}
		res.PayloadBytes = int(n)
		rec.Benchmarks = append(rec.Benchmarks, res)
	}
	svc.Shutdown()

	// Iterative-kernel benchmark: 60 CG iterations through the
	// accelerator backend (plan built once per op, reused per iteration).
	m := copernicus.Stencil2D(16, 16, 3)
	rhs := make([]float64, m.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	res, err = measure("cg_accelerator_csr_p16_60iter", iters, 0, func() error {
		mul, _, err := copernicus.AcceleratorBackend(m, copernicus.CSR, 16)
		if err != nil {
			return err
		}
		_, _, err = copernicus.SolveCG(mul, rhs, 0, 60)
		return err
	})
	if err != nil {
		return err
	}
	rec.Benchmarks = append(rec.Benchmarks, res)

	// Large-sparse cold-plan benchmark: a big, very sparse matrix at
	// several partition sizes. Cold partition→encode cost now scales with
	// nnz, not tiles·p² — this entry makes the O(p²)→O(nnz) trajectory
	// visible in the per-commit BENCH record.
	big := copernicus.Random(16*scale, 0.001, 77)
	x := make([]float64, big.Cols)
	for _, p := range []int{scale / 4, scale} {
		res, err = measure(fmt.Sprintf("cold_plan_large_sparse_p%d", p), iters, 0, func() error {
			pl, err := copernicus.NewStreamPlan(big, p)
			if err != nil {
				return err
			}
			_, err = pl.Run(copernicus.CSR, x)
			return err
		})
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, res)
	}

	// Warm-path benchmark: steady-state SpMV on a warm plan through the
	// allocation-free RunInto path (allocs_per_op must stay 0).
	warm, err := copernicus.NewStreamPlan(big, scale/4)
	if err != nil {
		return err
	}
	var sr copernicus.StreamResult
	if err := warm.RunInto(copernicus.CSR, x, &sr); err != nil {
		return err
	}
	res, err = measure("warm_plan_runinto_csr", iters*100, 0, func() error {
		return warm.RunInto(copernicus.CSR, x, &sr)
	})
	if err != nil {
		return err
	}
	rec.Benchmarks = append(rec.Benchmarks, res)
	runIntoNs := res.NsPerOp

	// Executable-kernel benchmarks: warm tile-parallel SpMV through each
	// format's own kernel on the same large sparse matrix, at one thread
	// and at full machine width. The t1/tmax pair exposes per-format
	// kernel cost and parallel scaling in one artifact; allocs_per_op
	// must stay 0 on every warm exec path.
	maxT := runtime.GOMAXPROCS(0)
	kernelFormats := []struct {
		name string
		f    copernicus.Format
	}{
		{"csr", copernicus.CSR}, {"ell", copernicus.ELL}, {"sellcs", copernicus.SELLCS},
		{"bcsr", copernicus.BCSR}, {"dia", copernicus.DIA},
	}
	var csrT1Ns, csrTmaxNs float64
	for _, kf := range kernelFormats {
		for _, tc := range []struct {
			label   string
			threads int
		}{{"t1", 1}, {"tmax", maxT}} {
			if err := warm.RunExecInto(kf.f, x, &sr, tc.threads); err != nil {
				return err
			}
			res, err = measure(fmt.Sprintf("native_spmv_%s_%s", kf.name, tc.label), iters*100, 0, func() error {
				return warm.RunExecInto(kf.f, x, &sr, tc.threads)
			})
			if err != nil {
				return err
			}
			rec.Benchmarks = append(rec.Benchmarks, res)
			if kf.name == "csr" {
				if tc.label == "t1" {
					csrT1Ns = res.NsPerOp
				} else {
					csrTmaxNs = res.NsPerOp
				}
			}
		}
	}
	speedup := csrT1Ns / csrTmaxNs
	rec.Benchmarks = append(rec.Benchmarks, benchResult{
		Name: "parallel_speedup_csr", Iterations: iters * 100, NsPerOp: csrTmaxNs, Speedup: speedup,
	})

	// Partition-size exec benchmarks: warm RunExecInto on the same large
	// sparse matrix at p = 64/128/256, CSR and SELL-C-σ. Partition size
	// trades tile-dispatch overhead (small p, many tiles) against cache
	// residency and padding (large p); these entries plus the best-p
	// verdict line pin where that trade lands for the exec kernels.
	execBestP := map[string]int{}
	execBestNs := map[string]float64{}
	for _, pf := range []struct {
		name string
		f    copernicus.Format
	}{{"csr", copernicus.CSR}, {"sellcs", copernicus.SELLCS}} {
		for _, p := range []int{64, 128, 256} {
			pl, err := copernicus.NewStreamPlan(big, p)
			if err != nil {
				return err
			}
			if err := pl.RunExecInto(pf.f, x, &sr, 1); err != nil {
				return err
			}
			res, err = measure(fmt.Sprintf("exec_partition_%s_p%d", pf.name, p), iters*10, 0, func() error {
				return pl.RunExecInto(pf.f, x, &sr, 1)
			})
			if err != nil {
				return err
			}
			rec.Benchmarks = append(rec.Benchmarks, res)
			if best, ok := execBestNs[pf.name]; !ok || res.NsPerOp < best {
				execBestNs[pf.name] = res.NsPerOp
				execBestP[pf.name] = p
			}
		}
	}

	// CSR skip-list before/after: the exec CSR kernel walks an encode-time
	// non-empty-row skip list instead of reading all p row offsets per
	// tile. The full walk stays available as the bit-identical reference,
	// so both traversals are timed on the same encoded tiles of the large
	// sparse matrix — the pair records what the skip list buys.
	pt := copernicus.PartitionMatrix(big, scale/4)
	type csrTile struct {
		enc *copernicus.CSRTile
		row int
		col int
	}
	var csrTiles []csrTile
	for _, tile := range pt {
		enc, ok := copernicus.Encode(copernicus.CSR, tile).(*copernicus.CSRTile)
		if !ok {
			return fmt.Errorf("bench: CSR encode returned %T", copernicus.Encode(copernicus.CSR, tile))
		}
		csrTiles = append(csrTiles, csrTile{enc: enc, row: tile.Row, col: tile.Col})
	}
	yWalk := make([]float64, big.Rows)
	for _, mode := range []struct {
		name string
		full bool
	}{{"csr_exec_full_row_walk", true}, {"csr_exec_skip_row_walk", false}} {
		res, err = measure(mode.name, iters*10, 0, func() error {
			clear(yWalk)
			for _, ct := range csrTiles {
				ys := yWalk[ct.row:min(ct.row+scale/4, big.Rows)]
				if mode.full {
					ct.enc.SpMVFullWalk(x[ct.col:], ys)
				} else {
					ct.enc.SpMV(x[ct.col:], ys)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, res)
	}

	// Kernel-axis benchmarks: one full multi-iteration kernel invocation
	// through the warm exec iteration loop (RunKernelInto) — the unit the
	// native backend times for -kernel specs. 60 CG iterations over CSR
	// and an 8-column SpMM over SELL-C-σ, both single-threaded; the warm
	// loop must stay allocation-free like the single SpMV it repeats.
	kernelRuns := []struct {
		name  string
		f     copernicus.Format
		iters int
	}{
		{"native_cg60_csr_t1", copernicus.CSR, 60},
		{"native_spmm8_sellcs_t1", copernicus.SELLCS, 8},
	}
	for _, kr := range kernelRuns {
		if err := warm.RunKernelInto(ctx, kr.f, x, &sr, 1, kr.iters); err != nil {
			return err
		}
		res, err = measure(kr.name, iters*10, 0, func() error {
			return warm.RunKernelInto(ctx, kr.f, x, &sr, 1, kr.iters)
		})
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, res)
	}

	// Kernel-axis sweep: the SuiteSparse sweep across two kernel specs
	// (spmv and cg:60) on the warm engine. The plan cache keys only
	// (matrix, p), so the second kernel re-prices cached plans instead of
	// re-encoding — this entry tracks that the axis stays close to 2x the
	// single-kernel sweep, not 2x the cold cost.
	cg60, err := copernicus.ParseKernel("cg:60")
	if err != nil {
		return err
	}
	axisSpecs := []copernicus.KernelSpec{copernicus.DefaultKernel(), cg60}
	if _, err := e.SweepKernelsWith(ctx, bk, ws, axisSpecs, copernicus.CoreFormats(), copernicus.PartitionSizes()); err != nil {
		return err
	}
	res, err = measure("sweep_kernel_axis_warm", iters, 2*points, func() error {
		_, err := e.SweepKernelsWith(ctx, bk, ws, axisSpecs, copernicus.CoreFormats(), copernicus.PartitionSizes())
		return err
	})
	if err != nil {
		return err
	}
	rec.Benchmarks = append(rec.Benchmarks, res)

	for _, b := range rec.Benchmarks {
		fmt.Printf("%-34s %8d iters  %12.0f ns/op %10.0f allocs/op %14.0f B/op\n",
			b.Name, b.Iterations, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
	// Raw-speed assertion (ROADMAP item 2): the full-width parallel CSR
	// kernel against the warm single-thread RunInto reference. The exec
	// path pays the format's real per-tile traversal (offset walks,
	// padding) that RunInto's fused row list skips, so the win arrives
	// only when the fan-out outruns that honest overhead; the verdict
	// line states the comparison either way. On a one-core host there is
	// no fan-out to measure and the assertion is reported as skipped.
	fmt.Printf("exec_partition_best: csr p=%d (%.0f ns), sellcs p=%d (%.0f ns)\n",
		execBestP["csr"], execBestNs["csr"], execBestP["sellcs"], execBestNs["sellcs"])
	switch {
	case maxT == 1:
		fmt.Printf("parallel_csr_vs_runinto: skipped (GOMAXPROCS=1; exec t1 %.0f ns vs RunInto %.0f ns)\n",
			csrT1Ns, runIntoNs)
	case csrTmaxNs < runIntoNs:
		fmt.Printf("parallel_csr_vs_runinto: %.0f ns -> %.0f ns (%.2fx vs RunInto, %.2fx vs t1) [ok: parallel beats warm RunInto]\n",
			runIntoNs, csrTmaxNs, runIntoNs/csrTmaxNs, speedup)
	default:
		fmt.Printf("parallel_csr_vs_runinto: %.0f ns vs RunInto %.0f ns (%.2fx vs t1) [miss: fan-out below traversal overhead]\n",
			csrTmaxNs, runIntoNs, speedup)
	}
	if !jsonOut {
		return nil
	}
	if out == "" {
		out = "BENCH_sweep.json"
	}
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// sinkResponseWriter discards the response body while counting it — the
// warm-hit benchmarks time the serving path itself, not buffer copies
// into a test recorder.
type sinkResponseWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *sinkResponseWriter) Header() http.Header { return w.h }
func (w *sinkResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *sinkResponseWriter) Write(b []byte) (int, error) {
	w.n += int64(len(b))
	return len(b), nil
}

// cliBackend resolves the -backend/-threads flag pair: -threads is
// native-only (measured fan-out is meaningless for the analytic model)
// and bounded by GOMAXPROCS, rejected with a clear error otherwise.
func cliBackend(backendID string, threads int) (copernicus.Backend, error) {
	b, err := copernicus.BackendFor(backendID)
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		return b, nil
	}
	return copernicus.WithNativeThreads(b, threads)
}

// cliKernel resolves the -kernel flag; empty keeps the pre-kernel-axis
// default of one SpMV.
func cliKernel(kernel string) (copernicus.KernelSpec, error) {
	if kernel == "" {
		return copernicus.DefaultKernel(), nil
	}
	return copernicus.ParseKernel(kernel)
}

// buildMatrix generates a matrix of the named kind.
func buildMatrix(kind string, n int, density float64, width int, seed uint64) (*copernicus.Matrix, error) {
	switch kind {
	case "random":
		return copernicus.Random(n, density, seed), nil
	case "band":
		return copernicus.Band(n, width, seed), nil
	case "graph":
		return copernicus.ScaleFreeGraph(n, 6, seed), nil
	case "stencil":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return copernicus.Stencil2D(side, side, seed), nil
	case "circuit":
		return copernicus.Circuit(n, seed), nil
	case "ml":
		return copernicus.PrunedWeights(n, n, density, seed), nil
	default:
		return nil, fmt.Errorf("unknown matrix kind %q", kind)
	}
}

// stats prints the Fig. 3 statistics for one matrix.
func stats(m *copernicus.Matrix) error {
	fmt.Printf("matrix: %dx%d, nnz=%d, density=%.5g, bandwidth=%d\n",
		m.Rows, m.Cols, m.NNZ(), m.Density(), m.Bandwidth())
	fmt.Println("p   partdens%  rowdens%  nzrows%  nztiles  totaltiles")
	for _, p := range copernicus.PartitionSizes() {
		s := copernicus.Stats(m, p)
		fmt.Printf("%-3d %9.2f  %8.2f  %7.2f  %7d  %10d\n",
			p, 100*s.PartitionDensity, 100*s.RowDensity, 100*s.NonZeroRowFrac,
			s.NonZeroTiles, s.TotalTiles)
	}
	return nil
}

// trace prints the per-partition pipeline timeline.
func trace(m *copernicus.Matrix, formatName string, p, maxTiles int) error {
	f, err := parseFormat(formatName)
	if err != nil {
		return err
	}
	traces, err := copernicus.TraceSpMV(m, f, p)
	if err != nil {
		return err
	}
	return copernicus.RenderTimeline(os.Stdout, traces, maxTiles)
}

// parseFormat resolves a format by its display name.
func parseFormat(name string) (copernicus.Format, error) {
	for _, k := range copernicus.AllFormats() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return -1, fmt.Errorf("unknown format %q", name)
}

// scaling sweeps coarse-grained pipeline instances (§5.1).
func scaling(m *copernicus.Matrix, formatName string, p, maxLanes int) error {
	f, err := parseFormat(formatName)
	if err != nil {
		return err
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	base, err := copernicus.SpMVParallel(m, x, f, p, 1)
	if err != nil {
		return err
	}
	fmt.Printf("coarse-grained scaling, %v at p=%d over %d non-zero tiles:\n", f, p, base.NonZeroTiles)
	fmt.Println("lanes  cycles       speedup  efficiency")
	for lanes := 1; lanes <= maxLanes; lanes *= 2 {
		r, err := copernicus.SpMVParallel(m, x, f, p, lanes)
		if err != nil {
			return err
		}
		fmt.Printf("%-5d  %-11d  %6.2fx  %9.3f\n",
			lanes, r.TotalCycles, float64(base.TotalCycles)/float64(r.TotalCycles), r.Efficiency())
	}
	return nil
}

func options(scale int) *copernicus.ReportOptions {
	o := copernicus.NewReportOptions()
	o.WL = copernicus.WorkloadConfig{Scale: scale, RandomDim: scale, BandDim: scale}
	return o
}

func runExperiments(ids []string, scale int, csv bool, outDir string) error {
	o := options(scale)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		t, err := copernicus.RunExperiment(o, id)
		if err != nil {
			return err
		}
		if outDir != "" {
			if err := writeArtifact(outDir, id, t); err != nil {
				return err
			}
			fmt.Printf("wrote %s/%s.{txt,csv}\n", outDir, id)
			continue
		}
		if csv {
			if err := t.CSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func writeArtifact(dir, id string, t copernicus.ExperimentTable) error {
	txt, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	if err := t.Render(txt); err != nil {
		txt.Close()
		return err
	}
	if err := txt.Close(); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(csvf); err != nil {
		csvf.Close()
		return err
	}
	return csvf.Close()
}

func advise(ctx context.Context, m *copernicus.Matrix, kind string, p int, backendID string, threads int, kernel string) error {
	b, err := cliBackend(backendID, threads)
	if err != nil {
		return err
	}
	sc, err := cliKernel(kernel)
	if err != nil {
		return err
	}
	class := copernicus.Classify(m)
	sf, alts, why := copernicus.StaticAdvice(class)
	fmt.Printf("matrix: %s, %dx%d, nnz=%d, density=%.4g, class=%s\n",
		kind, m.Rows, m.Cols, m.NNZ(), m.Density(), class)
	fmt.Printf("paper §8 rule of thumb: %v (alternatives %v)\n  %s\n", sf, alts, why)

	// The analytic default keeps this artifact byte-identical to the
	// pre-backend CLI; other backends and kernels announce themselves.
	if b.ID() != "analytic" {
		fmt.Printf("backend: %s (latency axis is measured host wall time)\n", b.ID())
	}
	if s := sc.String(); s != "spmv" {
		fmt.Printf("kernel: %s (latency axis is the whole kernel invocation, decompression amortized)\n", s)
	}
	rec, err := copernicus.NewEngine().RecommendKernelWith(ctx, b, m, sc, p, nil, copernicus.BalancedObjective())
	if err != nil {
		return err
	}
	fmt.Printf("measured recommendation: %s\n", rec.Reason)
	fmt.Println("ranking (best first):")
	for i, r := range rec.Results {
		fmt.Printf("  %d. %-7v time=%.3es  sigma=%6.2f  balance=%5.2f  bw_util=%.3f  dyn=%4.0fmW  bram=%d\n",
			i+1, rec.Ranking[i], r.Seconds, r.Sigma, r.BalanceRatio,
			r.BandwidthUtil, r.Synth.DynamicW*1000, r.Synth.BRAM18K)
	}
	return nil
}

// sweepCmd characterizes one matrix across formats × partition sizes
// under the selected backend and kernel — the CLI face of the backend
// seam and the kernel axis. With -backend native the seconds/ns-per-nnz
// columns are measured host-CPU wall time of the warm streaming kernel;
// with the default analytic backend they are the paper's modelled
// accelerator time. With -kernel cg:60 (etc.) every row costs the whole
// iteration loop, decompression amortized across iterations.
//
// Rows print as each partition-size group completes (the engine's
// streaming sweep), so a canceled run still shows the finished groups —
// the caller marks such output as partial.
func sweepCmd(ctx context.Context, m *copernicus.Matrix, kind, backendID string, threads int, kernel, formatsList, psList string, csv bool) error {
	b, err := cliBackend(backendID, threads)
	if err != nil {
		return err
	}
	sc, err := cliKernel(kernel)
	if err != nil {
		return err
	}
	kinds := copernicus.CoreFormats()
	if formatsList != "" {
		kinds = kinds[:0]
		for _, name := range strings.Split(formatsList, ",") {
			k, err := parseFormat(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			kinds = append(kinds, k)
		}
	}
	var ps []int
	for _, tok := range strings.Split(psList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || p < 1 {
			return fmt.Errorf("sweep: bad partition size %q", tok)
		}
		ps = append(ps, p)
	}

	e := copernicus.NewEngine()
	ws := []copernicus.Workload{{ID: "matrix", M: m}}
	specs := []copernicus.KernelSpec{sc}
	if csv {
		fmt.Println("backend,kernel,iterations,format,p,seconds,ns_per_nnz,sigma,balance,bw_util,measured")
		return e.SweepStreamKernelsWith(ctx, b, ws, specs, kinds, ps, func(r copernicus.Result) error {
			fmt.Printf("%s,%s,%d,%s,%d,%.6e,%.3f,%.3f,%.3f,%.4f,%t\n",
				r.Backend, r.Kernel, r.Iterations, r.Format, r.P, r.Seconds, r.NsPerNNZ, r.Sigma,
				r.BalanceRatio, r.BandwidthUtil, r.Measured)
			return nil
		})
	}
	fmt.Printf("matrix: %s, %dx%d, nnz=%d, density=%.4g\n",
		kind, m.Rows, m.Cols, m.NNZ(), m.Density())
	headed := false
	return e.SweepStreamKernelsWith(ctx, b, ws, specs, kinds, ps, func(r copernicus.Result) error {
		if !headed {
			headed = true
			fmt.Printf("backend: %s", b.ID())
			if b.ID() == "native" {
				fmt.Printf(" (min of %d timed runs, threads=%d; host ns, not accelerator cycles)",
					r.MeasuredRuns, r.Threads)
			}
			if r.Kernel != "spmv" {
				fmt.Printf("  kernel: %s (%d iterations per invocation)", r.Kernel, r.Iterations)
			}
			fmt.Println()
			fmt.Println("format   p    seconds     ns/nnz      sigma    balance  bw_util")
		}
		fmt.Printf("%-7v  %-3d  %.3e  %10.2f  %7.2f  %7.2f  %7.4f\n",
			r.Format, r.P, r.Seconds, r.NsPerNNZ, r.Sigma, r.BalanceRatio, r.BandwidthUtil)
		return nil
	})
}

func describeWorkloads(scale int) error {
	c := copernicus.WorkloadConfig{Scale: scale, RandomDim: scale, BandDim: scale}
	fmt.Println("SuiteSparse surrogates (Table 1):")
	for _, w := range copernicus.SuiteSparseWorkloads(c) {
		fmt.Printf("  %-2s %-18s %-26s dim=%-6d nnz=%-8d density=%.5f (paper: %.3gM x %.3gM nnz)\n",
			w.ID, w.Name, w.Kind, w.M.Rows, w.M.NNZ(), w.Density(), w.PaperDim, w.PaperNNZ)
	}
	fmt.Println("Random suite:")
	for _, w := range copernicus.RandomWorkloads(c) {
		fmt.Printf("  %-8s dim=%-6d nnz=%-8d density=%.5f\n", w.ID, w.M.Rows, w.M.NNZ(), w.Density())
	}
	fmt.Println("Band suite:")
	for _, w := range copernicus.BandWorkloads(c) {
		fmt.Printf("  %-8s dim=%-6d nnz=%-8d bandwidth=%d\n", w.ID, w.M.Rows, w.M.NNZ(), w.M.Bandwidth())
	}
	return nil
}
