package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadgenAgainstLiveServer drives the full deck against an
// in-process server for a short burst: every scenario must complete
// requests without errors, and the JSON report must land on disk with
// populated percentiles.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	svc, hs, err := buildServe(serveConfig{scale: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(hs.Handler)
	defer ts.Close()
	defer svc.Shutdown()

	out := filepath.Join(t.TempDir(), "BENCH_loadgen.json")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = loadgenCmd(ctx, loadgenConfig{
		target:   ts.URL,
		rps:      200,
		duration: 3 * time.Second,
		conc:     32,
		matrix:   "DW",
		out:      out,
		strict:   true, // any failed request fails the test
		wait:     10 * time.Second,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var file lgFile
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(file.Runs) != 1 || file.Runs[0].Name != "default" {
		t.Fatalf("want a single \"default\" run, got %d runs", len(file.Runs))
	}
	rep := file.Runs[0]
	if rep.Completed == 0 || rep.AchievedRPS <= 0 {
		t.Fatalf("idle run: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	names := map[string]bool{}
	for _, sc := range rep.Scenarios {
		names[sc.Name] = true
		if sc.Requests > 0 && (sc.P50Ms <= 0 || sc.P99Ms < sc.P50Ms) {
			t.Fatalf("scenario %s has inconsistent percentiles: %+v", sc.Name, sc)
		}
		if sc.Requests > 0 && sc.BytesPerReq <= 0 {
			t.Fatalf("scenario %s reports no bytes: %+v", sc.Name, sc)
		}
	}
	for _, want := range []string{
		"sweep_warm_json", "sweep_warm_col", "characterize_warm_json",
		"characterize_warm_col", "advise_warm_json", "advise_warm_col",
		"sweep_cold_json", "sweep_cold_col",
	} {
		if !names[want] {
			t.Fatalf("deck missing scenario %q", want)
		}
	}
}

// TestLoadgenClusterDeck: the -cluster deck rotates matrices across the
// fixed set (spreading groups over a coordinator's hash ring) and its
// requests build cleanly.
func TestLoadgenClusterDeck(t *testing.T) {
	deck := clusterDeck()
	if len(deck) == 0 {
		t.Fatal("empty cluster deck")
	}
	seen := map[string]bool{}
	for _, sc := range deck {
		for seq := uint64(0); seq < uint64(len(lgRotation)); seq++ {
			req, err := sc.build(seq, "http://h", "IGNORED")
			if err != nil {
				t.Fatalf("%s seq %d: %v", sc.name, seq, err)
			}
			want := lgRotation[seq%uint64(len(lgRotation))]
			u := req.URL.String()
			if req.Body != nil {
				b, _ := io.ReadAll(req.Body)
				u += string(b)
			}
			if !strings.Contains(u, want) {
				t.Fatalf("%s seq %d: request %q does not rotate to matrix %s", sc.name, seq, u, want)
			}
			if strings.Contains(u, "IGNORED") {
				t.Fatalf("%s seq %d: cluster deck must ignore the -matrix flag", sc.name, seq)
			}
		}
		seen[sc.name] = true
	}
	for _, want := range []string{"sweep_warm_col", "sweep_warm_json", "sweep_cold_col", "advise_warm_col"} {
		if !seen[want] {
			t.Fatalf("cluster deck missing %q", want)
		}
	}
}

// TestLoadgenWaitReadyTimeout: a dead target fails fast with a clear
// error instead of hammering a closed port for the full duration.
func TestLoadgenWaitReadyTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := runLoadgen(ctx, loadgenConfig{
		target:   "http://127.0.0.1:1", // reserved port, nothing listens
		duration: time.Second,
		wait:     500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("loadgen against a dead target did not fail")
	}
}

// TestLoadgenPercentiles pins the nearest-rank percentile extraction.
func TestLoadgenPercentiles(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentileMs(lats, 0.50); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := percentileMs(lats, 0.99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := percentileMs(nil, 0.99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
}
