package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadgenAgainstLiveServer drives the full deck against an
// in-process server for a short burst: every scenario must complete
// requests without errors, and the JSON report must land on disk with
// populated percentiles.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	svc, hs := buildServe(serveConfig{scale: 64})
	ts := httptest.NewServer(hs.Handler)
	defer ts.Close()
	defer svc.Shutdown()

	out := filepath.Join(t.TempDir(), "BENCH_loadgen.json")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := loadgenCmd(ctx, loadgenConfig{
		target:   ts.URL,
		rps:      200,
		duration: 3 * time.Second,
		conc:     32,
		matrix:   "DW",
		out:      out,
		strict:   true, // any failed request fails the test
		wait:     10 * time.Second,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep lgReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Completed == 0 || rep.AchievedRPS <= 0 {
		t.Fatalf("idle run: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	names := map[string]bool{}
	for _, sc := range rep.Scenarios {
		names[sc.Name] = true
		if sc.Requests > 0 && (sc.P50Ms <= 0 || sc.P99Ms < sc.P50Ms) {
			t.Fatalf("scenario %s has inconsistent percentiles: %+v", sc.Name, sc)
		}
		if sc.Requests > 0 && sc.BytesPerReq <= 0 {
			t.Fatalf("scenario %s reports no bytes: %+v", sc.Name, sc)
		}
	}
	for _, want := range []string{
		"sweep_warm_json", "sweep_warm_col", "characterize_warm_json",
		"characterize_warm_col", "advise_warm_json", "sweep_cold_json", "sweep_cold_col",
	} {
		if !names[want] {
			t.Fatalf("deck missing scenario %q", want)
		}
	}
}

// TestLoadgenWaitReadyTimeout: a dead target fails fast with a clear
// error instead of hammering a closed port for the full duration.
func TestLoadgenWaitReadyTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := runLoadgen(ctx, loadgenConfig{
		target:   "http://127.0.0.1:1", // reserved port, nothing listens
		duration: time.Second,
		wait:     500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("loadgen against a dead target did not fail")
	}
}

// TestLoadgenPercentiles pins the nearest-rank percentile extraction.
func TestLoadgenPercentiles(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentileMs(lats, 0.50); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := percentileMs(lats, 0.99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := percentileMs(nil, 0.99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
}
