package main

import (
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// TestBuildServeDefaults: the hardened http.Server carries the
// documented timeout defaults — and WriteTimeout stays 0 so NDJSON and
// SSE streams are never cut at a wall-clock limit.
func TestBuildServeDefaults(t *testing.T) {
	svc, hs, err := buildServe(serveConfig{addr: "localhost:0", scale: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()

	if hs.ReadHeaderTimeout != 10*time.Second {
		t.Fatalf("ReadHeaderTimeout = %v", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout != 30*time.Second {
		t.Fatalf("ReadTimeout = %v, want 30s", hs.ReadTimeout)
	}
	if hs.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout = %v, want 0 (streaming responses must not be cut)", hs.WriteTimeout)
	}
	if hs.IdleTimeout != 120*time.Second {
		t.Fatalf("IdleTimeout = %v, want 120s", hs.IdleTimeout)
	}
	if hs.MaxHeaderBytes != 1<<20 {
		t.Fatalf("MaxHeaderBytes = %d, want 1 MiB", hs.MaxHeaderBytes)
	}
	if hs.Addr != "localhost:0" {
		t.Fatalf("Addr = %q", hs.Addr)
	}
	if hs.Handler == nil {
		t.Fatal("Handler not set")
	}
}

// TestBuildServeOverrides: every limit is flag-tunable, and negative
// values disable the corresponding limit.
func TestBuildServeOverrides(t *testing.T) {
	svc, hs, err := buildServe(serveConfig{
		addr:           "localhost:0",
		scale:          64,
		readTimeout:    5 * time.Second,
		writeTimeout:   7 * time.Second,
		idleTimeout:    11 * time.Second,
		maxHeaderBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	if hs.ReadTimeout != 5*time.Second || hs.WriteTimeout != 7*time.Second ||
		hs.IdleTimeout != 11*time.Second || hs.MaxHeaderBytes != 4<<10 {
		t.Fatalf("overrides not applied: read=%v write=%v idle=%v hdr=%d",
			hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout, hs.MaxHeaderBytes)
	}

	svc2, hs2, err := buildServe(serveConfig{addr: "localhost:0", scale: 64, readTimeout: -1, idleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown()
	if hs2.ReadTimeout >= 0 && hs2.ReadTimeout != -1 {
		t.Fatalf("negative readTimeout should pass through: %v", hs2.ReadTimeout)
	}
	if hs2.IdleTimeout >= 0 && hs2.IdleTimeout != -1 {
		t.Fatalf("negative idleTimeout should pass through: %v", hs2.IdleTimeout)
	}
}

// TestBuildServeServesRequests: the built handler answers over a real
// listener — the hardened server is wired to the service, not a shell.
func TestBuildServeServesRequests(t *testing.T) {
	svc, hs, err := buildServe(serveConfig{addr: "localhost:0", scale: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()
	ts := httptest.NewServer(hs.Handler)
	defer ts.Close()

	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/v1/matrices"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestServeFlagsParse: the serve flags round-trip through the CLI flag
// set (an unknown flag would error before dispatch).
func TestServeFlagsParse(t *testing.T) {
	silence(t)
	// Bad flag value must error out of run before any server is built.
	if err := run([]string{"serve", "-read-timeout", "nonsense"}); err == nil {
		t.Fatal("bad -read-timeout accepted")
	}
	if err := run([]string{"serve", "-max-header-bytes", "x"}); err == nil {
		t.Fatal("bad -max-header-bytes accepted")
	}
}

// TestBuildServeCoordinator: -coordinator turns the -workers flag into
// the fleet list (optionally merged with a -workers-file), and the
// built server reports cluster stats; standalone, -workers stays the
// pool-size integer and rejects a host list.
func TestBuildServeCoordinator(t *testing.T) {
	fleetFile := t.TempDir() + "/fleet"
	if err := os.WriteFile(fleetFile, []byte("# fleet\nhost3:1003\n\nhost4:1004\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc, _, err := buildServe(serveConfig{
		addr:        "localhost:0",
		scale:       64,
		coordinator: true,
		workersFlag: "host1:1001,host2:1002",
		workersFile: fleetFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown()

	fleet, err := resolveFleet("host1:1001,host2:1002", fleetFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 4 {
		t.Fatalf("fleet = %v, want 4 workers (2 from flag, 2 from file)", fleet)
	}

	// Error paths: coordinator without a fleet, a fleet without
	// -coordinator, a pool size that is not an integer.
	if _, _, err := buildServe(serveConfig{addr: "localhost:0", scale: 64, coordinator: true}); err == nil {
		t.Fatal("-coordinator with no fleet accepted")
	}
	if _, _, err := buildServe(serveConfig{addr: "localhost:0", scale: 64, workersFile: fleetFile}); err == nil {
		t.Fatal("-workers-file without -coordinator accepted")
	}
	if _, _, err := buildServe(serveConfig{addr: "localhost:0", scale: 64, workersFlag: "host1:1001"}); err == nil {
		t.Fatal("host list without -coordinator accepted")
	}

	// Standalone -workers still sizes the pool.
	svc2, _, err := buildServe(serveConfig{addr: "localhost:0", scale: 64, workersFlag: "3"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown()
	if got := svc2.Engine().Workers(); got != 3 {
		t.Fatalf("pool size = %d, want 3", got)
	}
}
