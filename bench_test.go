// Benchmarks regenerating every table and figure of the paper's
// evaluation section (one benchmark per artifact; see DESIGN.md's
// per-experiment index), plus ablation benches for the design choices the
// paper fixes (ELL width 6, BCSR 4×4 blocks, partition-level compression,
// dual AXI streamlines).
//
// Each figure bench reports a headline series value through
// b.ReportMetric so a bench run doubles as a regeneration of the paper's
// numbers; run `go test -bench=. -benchmem` and compare with
// EXPERIMENTS.md.
package copernicus_test

import (
	"io"
	"runtime"
	"strconv"
	"testing"

	"copernicus"
	"copernicus/internal/core"
	"copernicus/internal/formats"
	"copernicus/internal/gen"
	"copernicus/internal/hlsim"
	"copernicus/internal/matrix"
	"copernicus/internal/report"
)

// benchOptions returns a fresh reduced-scale harness so each iteration
// regenerates the artifact from scratch (no cross-iteration caching).
func benchOptions() *report.Options { return report.NewSmallOptions() }

// lastCell parses the numeric cell at (row from end, col from end).
func lastCell(b *testing.B, t report.Table, rowFromEnd, col int) float64 {
	b.Helper()
	row := t.Rows[len(t.Rows)-1-rowFromEnd]
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		b.Fatalf("cell %q: %v", row[col], err)
	}
	return v
}

func benchFigure(b *testing.B, id string, metric string, pick func(report.Table) float64) {
	b.Helper()
	var last report.Table
	for i := 0; i < b.N; i++ {
		t, err := report.Generate(benchOptions(), id)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if err := last.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
	if pick != nil {
		b.ReportMetric(pick(last), metric)
	}
}

// BenchmarkFig3PartitionStats regenerates the workload-statistics figure.
func BenchmarkFig3PartitionStats(b *testing.B) {
	benchFigure(b, "fig3", "workloads", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkFig4SigmaSuiteSparse regenerates the SuiteSparse σ comparison;
// the reported metric is the CSC geomean (the paper's worst case).
func BenchmarkFig4SigmaSuiteSparse(b *testing.B) {
	benchFigure(b, "fig4", "geomean_sigma_csc", func(t report.Table) float64 {
		return lastCell(b, t, 0, 8) // GEOMEAN row, CSC column
	})
}

// BenchmarkFig5SigmaRandom regenerates σ vs density; reports CSC σ at
// density 0.5.
func BenchmarkFig5SigmaRandom(b *testing.B) {
	benchFigure(b, "fig5", "sigma_csc_d0.5", func(t report.Table) float64 {
		return lastCell(b, t, 0, 8)
	})
}

// BenchmarkFig6SigmaBand regenerates σ vs band width; reports CSC σ at
// width 64 (the paper's ~30× point).
func BenchmarkFig6SigmaBand(b *testing.B) {
	benchFigure(b, "fig6", "sigma_csc_w64", func(t report.Table) float64 {
		return lastCell(b, t, 0, 8)
	})
}

// BenchmarkFig7SigmaPartitionSize regenerates the partition-size study.
func BenchmarkFig7SigmaPartitionSize(b *testing.B) {
	benchFigure(b, "fig7", "rows", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkFig8BalanceScatter regenerates the memory/compute scatter.
func BenchmarkFig8BalanceScatter(b *testing.B) {
	benchFigure(b, "fig8", "points", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkFig9Throughput regenerates the throughput-vs-latency curves.
func BenchmarkFig9Throughput(b *testing.B) {
	benchFigure(b, "fig9", "points", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkFig10BandwidthRandom regenerates utilization vs density;
// reports COO utilization at density 0.5 (the paper's constant 1/3).
func BenchmarkFig10BandwidthRandom(b *testing.B) {
	benchFigure(b, "fig10", "coo_util", func(t report.Table) float64 {
		return lastCell(b, t, 0, 4) // COO column
	})
}

// BenchmarkFig11BandwidthBand regenerates utilization vs band width;
// reports DIA utilization on the diagonal matrix (≈1 in the paper).
func BenchmarkFig11BandwidthBand(b *testing.B) {
	benchFigure(b, "fig11", "dia_util_w1", func(t report.Table) float64 {
		return lastCell(b, t, len(t.Rows)-1, 7) // first row, DIA column
	})
}

// BenchmarkFig12BandwidthPartition regenerates the partition-size
// bandwidth study.
func BenchmarkFig12BandwidthPartition(b *testing.B) {
	benchFigure(b, "fig12", "rows", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkTable2Resources regenerates the resource/power table.
func BenchmarkTable2Resources(b *testing.B) {
	benchFigure(b, "table2", "rows", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkFig13PowerBreakdown regenerates the power-breakdown figure.
func BenchmarkFig13PowerBreakdown(b *testing.B) {
	benchFigure(b, "fig13", "rows", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkFig14Radar regenerates the normalized cross-metric summary.
func BenchmarkFig14Radar(b *testing.B) {
	benchFigure(b, "fig14", "rows", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// Ablation benches for the design choices DESIGN.md calls out.

func randomTileB(p int, density float64, seed uint64) *matrix.Tile {
	m := gen.Random(p, density, seed)
	return matrix.TileAt(m, 0, 0, p)
}

// BenchmarkAblationELLWidth sweeps the ELL+COO rectangle cap around the
// paper's fixed width 6, reporting transferred bytes per width on a
// skewed tile (one long row): small caps spill more tuples, large caps
// pad more.
func BenchmarkAblationELLWidth(b *testing.B) {
	tile := matrix.NewTile(16, 0, 0)
	for j := 0; j < 16; j++ {
		tile.Set(3, j, 1) // one full row
	}
	for i := 0; i < 16; i += 3 {
		tile.Set(i, 0, 1)
	}
	for _, cap := range []int{2, 4, 6, 8, 12} {
		b.Run("w"+strconv.Itoa(cap), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				bytes = formats.EncodeELLCOOCap(tile, cap).Footprint().TotalBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

// BenchmarkAblationBCSRBlock sweeps the BCSR block edge around the
// paper's fixed 4×4, reporting σ on a random 16×16 tile: small blocks
// pay more offset reads, large blocks transfer more explicit zeros.
func BenchmarkAblationBCSRBlock(b *testing.B) {
	cfg := hlsim.Default()
	tile := randomTileB(16, 0.15, 5)
	for _, blk := range []int{2, 4, 8} {
		b.Run("b"+strconv.Itoa(blk), func(b *testing.B) {
			var sigma float64
			for i := 0; i < b.N; i++ {
				var err error
				sigma, err = cfg.Sigma(formats.EncodeBCSRBlock(tile, blk))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sigma, "sigma")
		})
	}
}

// BenchmarkAblationWholeMatrix compares partition-level CSR compression
// (the paper's §4.1 practice) against compressing the whole matrix as one
// block, reporting transferred bytes: whole-matrix encoding pays offsets
// for every all-zero row and cannot skip all-zero regions.
func BenchmarkAblationWholeMatrix(b *testing.B) {
	m := gen.Random(256, 0.005, 9)
	b.Run("partitioned-p16", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			bytes = 0
			for _, tl := range matrix.Partition(m, 16).Tiles {
				bytes += formats.Encode(formats.CSR, tl).Footprint().TotalBytes()
			}
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
	b.Run("whole-matrix", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			tile := matrix.TileAt(m, 0, 0, 256)
			bytes = formats.Encode(formats.CSR, tile).Footprint().TotalBytes()
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
}

// BenchmarkAblationELLVariants compares plain ELL against the §2 variant
// formats on a skewed scale-free tile, reporting transferred bytes.
func BenchmarkAblationELLVariants(b *testing.B) {
	m := gen.PreferentialAttachment(16, 3, 11)
	tile := matrix.TileAt(m, 0, 0, 16)
	for _, k := range []formats.Kind{formats.ELL, formats.SELL, formats.ELLCOO, formats.JDS} {
		b.Run(k.String(), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				bytes = formats.Encode(k, tile).Footprint().TotalBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

// BenchmarkAblationStreamlines compares the paper's dual parallel AXI
// streamlines against a single serialized lane, reporting mean memory
// cycles per tile for CSR on a random matrix.
func BenchmarkAblationStreamlines(b *testing.B) {
	m := gen.Random(256, 0.05, 13)
	x := make([]float64, 256)
	run := func(b *testing.B, cfg hlsim.Config) {
		var mem float64
		for i := 0; i < b.N; i++ {
			res, err := hlsim.Run(cfg, m, formats.CSR, 16, x)
			if err != nil {
				b.Fatal(err)
			}
			mem = res.MeanMemCycles()
		}
		b.ReportMetric(mem, "mem_cycles/tile")
	}
	b.Run("dual", func(b *testing.B) { run(b, hlsim.Default()) })
	b.Run("single", func(b *testing.B) {
		cfg := hlsim.Default()
		cfg.SingleStreamline = true
		run(b, cfg)
	})
}

// BenchmarkExt1AllFormatSigma regenerates the extension all-formats σ
// comparison.
func BenchmarkExt1AllFormatSigma(b *testing.B) {
	benchFigure(b, "ext1", "rows", func(t report.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkExt3ScalingLanes regenerates the coarse-grained aggregation
// study; the reported metric is the 16-lane efficiency of the last row.
func BenchmarkExt3ScalingLanes(b *testing.B) {
	benchFigure(b, "ext3", "eff_16lane", func(t report.Table) float64 {
		return lastCell(b, t, 0, 5)
	})
}

// BenchmarkScalingSpeedup measures SpMVParallel directly across lane
// counts on one matrix.
func BenchmarkScalingSpeedup(b *testing.B) {
	m := copernicus.Random(512, 0.02, 23)
	x := make([]float64, m.Cols)
	for _, lanes := range []int{1, 4, 16} {
		b.Run("lanes"+strconv.Itoa(lanes), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				r, err := copernicus.SpMVParallel(m, x, copernicus.COO, 16, lanes)
				if err != nil {
					b.Fatal(err)
				}
				cycles = r.TotalCycles
			}
			b.ReportMetric(float64(cycles), "modelled_cycles")
		})
	}
}

// BenchmarkSpMVFormats measures the end-to-end modelled SpMV throughput
// of the public API per format (the library's hot path).
func BenchmarkSpMVFormats(b *testing.B) {
	m := copernicus.Random(256, 0.02, 17)
	x := make([]float64, 256)
	for i := range x {
		x[i] = 1
	}
	for _, f := range copernicus.CoreFormats() {
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := copernicus.SpMV(m, x, f, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepSmall measures a full Engine.Sweep over the reduced
// SuiteSparse suite across the core formats and all three partition
// sizes — the engine hot path the streaming-plan cache accelerates. The
// engine is long-lived (as in report.Options), so plan reuse across
// iterations reflects steady-state sweep cost.
func BenchmarkSweepSmall(b *testing.B) {
	e := copernicus.NewEngine()
	ws := copernicus.SuiteSparseWorkloads(copernicus.WorkloadConfig{Scale: 256, RandomDim: 256, BandDim: 256})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := e.Sweep(ws, copernicus.CoreFormats(), copernicus.PartitionSizes())
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != len(ws)*len(copernicus.CoreFormats())*3 {
			b.Fatalf("sweep produced %d results", len(rs))
		}
	}
}

// BenchmarkCGAccelerator measures an iterative solve through the
// modelled accelerator: 60 CG iterations whose inner loop is the
// accelerator SpMV backend. Pre-plan, every iteration re-partitioned and
// re-encoded the matrix; with the streaming plan only the per-iteration
// dot work remains.
func BenchmarkCGAccelerator(b *testing.B) {
	m := copernicus.Stencil2D(16, 16, 3)
	rhs := make([]float64, m.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	for i := 0; i < b.N; i++ {
		mul, _, err := copernicus.AcceleratorBackend(m, copernicus.CSR, 16)
		if err != nil {
			b.Fatal(err)
		}
		_, st, err := copernicus.SolveCG(mul, rhs, 0, 60)
		if err != nil {
			b.Fatal(err)
		}
		if st.Iterations < 50 {
			b.Fatalf("CG stopped after %d iterations", st.Iterations)
		}
	}
}

// BenchmarkPlanReuseSpMV contrasts the one-shot SpMV path (which
// partitions, encodes, and cross-checks per call) against repeated Run
// calls on a shared StreamPlan (which pay only the dot work).
func BenchmarkPlanReuseSpMV(b *testing.B) {
	m := copernicus.Random(256, 0.02, 17)
	x := make([]float64, 256)
	for i := range x {
		x[i] = 1
	}
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := copernicus.SpMV(m, x, copernicus.CSR, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan", func(b *testing.B) {
		pl, err := copernicus.NewStreamPlan(m, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Run(copernicus.CSR, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepWorkers measures the worker-pool sweep at several pool
// sizes over the random+band suites (fresh engine per iteration, so the
// pool — not the plan cache — is what varies).
func BenchmarkSweepWorkers(b *testing.B) {
	c := copernicus.WorkloadConfig{Scale: 256, RandomDim: 256, BandDim: 256}
	ws := append(copernicus.RandomWorkloads(c), copernicus.BandWorkloads(c)...)
	for _, workers := range []int{1, 2, 4} {
		b.Run("w"+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := copernicus.NewEngine()
				e.SetWorkers(workers)
				if _, err := e.Sweep(ws, copernicus.CoreFormats(), copernicus.PartitionSizes()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdvisor measures the empirical format advisor.
func BenchmarkAdvisor(b *testing.B) {
	m := copernicus.ScaleFreeGraph(256, 4, 19)
	e := copernicus.NewEngine()
	for i := 0; i < b.N; i++ {
		if _, err := e.Recommend(m, 16, nil, core.BalancedObjective()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeomeanSigma reports the geometric-mean σ of every sparse
// format over the reduced SuiteSparse suite — the single-number summary
// of Fig. 4.
func BenchmarkGeomeanSigma(b *testing.B) {
	o := benchOptions()
	var t report.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = report.Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Columns: workload, DENSE, CSR, BCSR, COO, LIL, ELL, DIA, CSC.
	for c := 2; c < len(t.Header); c++ {
		v, perr := strconv.ParseFloat(t.Rows[len(t.Rows)-1][c], 64)
		if perr != nil {
			b.Fatal(perr)
		}
		b.ReportMetric(v, "gm_"+t.Header[c])
	}
}

// BenchmarkLargeSparseColdPlan measures the cold partition→encode path on
// a large, very sparse matrix across partition sizes — the regime where
// the sparse-native tiles pay off: cost scales with nnz, not with
// tiles·p². Each iteration builds a fresh plan and warms one format.
func BenchmarkLargeSparseColdPlan(b *testing.B) {
	m := copernicus.Random(4096, 0.001, 77)
	x := make([]float64, m.Cols)
	for _, p := range []int{64, 128, 256} {
		b.Run("p"+strconv.Itoa(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl, err := copernicus.NewStreamPlan(m, p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pl.Run(copernicus.CSR, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanWarmRunInto measures the steady-state SpMV on a warm plan
// through the allocation-free RunInto path (0 allocs/op by design; the
// assertion lives in internal/hlsim's AllocsPerRun test).
func BenchmarkPlanWarmRunInto(b *testing.B) {
	m := copernicus.Random(1024, 0.01, 31)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	pl, err := copernicus.NewStreamPlan(m, 16)
	if err != nil {
		b.Fatal(err)
	}
	var r copernicus.StreamResult
	if err := pl.RunInto(copernicus.CSR, x, &r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pl.RunInto(copernicus.CSR, x, &r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExec measures the steady-state tile-parallel executable-kernel
// SpMV on a warm plan — each format traversing its own encoded layout —
// at one thread and at full machine width (identical on one-core hosts).
// 0 allocs/op warm by design; the assertion lives in internal/hlsim's
// TestRunExecWarmZeroAllocs.
func BenchmarkExec(b *testing.B) {
	m := copernicus.Random(1024, 0.01, 31)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	pl, err := copernicus.NewStreamPlan(m, 16)
	if err != nil {
		b.Fatal(err)
	}
	threadCounts := []int{1}
	if maxT := runtime.GOMAXPROCS(0); maxT > 1 {
		threadCounts = append(threadCounts, maxT)
	}
	for _, k := range []copernicus.Format{copernicus.CSR, copernicus.ELL, copernicus.SELLCS, copernicus.BCSR, copernicus.DIA} {
		for _, tc := range threadCounts {
			b.Run(k.String()+"/t"+strconv.Itoa(tc), func(b *testing.B) {
				var r copernicus.StreamResult
				if err := pl.RunExecInto(k, x, &r, tc); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := pl.RunExecInto(k, x, &r, tc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
